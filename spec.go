package mcnet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"mcnet/internal/coloring"
)

// ScenarioSpec is the stable JSON document form of a Scenario — the wire
// format shared by the scenario service (POST /v1/jobs) and the CLI
// (mcscenario -spec file.json). It names topologies, aggregators and jam
// models by string instead of carrying Go values, so specs survive
// serialization, persistence and cross-process submission unchanged.
//
// Zero/absent fields take the same defaults as the corresponding Scenario
// and option fields: topology "crowd", 4 channels, op "sum", jam model
// "oblivious", 1 seed per point, base seed 1, and every empty sweep axis
// widened to {0}. Execution knobs (worker count, progress callbacks) are
// deliberately not part of the document: they belong to whoever runs the
// spec, not to the spec.
type ScenarioSpec struct {
	// Name titles the report (default "scenario").
	Name string `json:"name,omitempty"`
	// N is the node count (≥ 2).
	N int `json:"n"`
	// Topology names the deployment generator: crowd, uniform, grid, line
	// or ring (default crowd). TopologyParam feeds the parameterized ones —
	// target degree for uniform (default 12), spacing as a fraction of the
	// communication radius for line and ring (default 0.7) — and must be 0
	// for the parameterless crowd and grid.
	Topology      string  `json:"topology,omitempty"`
	TopologyParam float64 `json:"topology_param,omitempty"`
	// Channels is the number of radio channels (default 4).
	Channels int `json:"channels,omitempty"`
	// Loss, Jam, Churn and Byz are the sweep axes, with Scenario's
	// semantics (Byz is the Byzantine-fraction axis).
	Loss  []float64 `json:"loss,omitempty"`
	Jam   []int     `json:"jam,omitempty"`
	Churn []float64 `json:"churn,omitempty"`
	Byz   []float64 `json:"byz,omitempty"`
	// ByzStrategy names what Byzantine nodes do: corrupt, equivocate or
	// silent (default corrupt).
	ByzStrategy string `json:"byz_strategy,omitempty"`
	// JamModel names the jamming adversary: oblivious, roundrobin, reactive
	// or adaptive (default oblivious).
	JamModel string `json:"jam_model,omitempty"`
	// Seeds is the number of repetitions per grid point (default 1);
	// repetition s runs with seed BaseSeed + s (BaseSeed default 1).
	Seeds    int    `json:"seeds,omitempty"`
	BaseSeed uint64 `json:"base_seed,omitempty"`
	// Op names the aggregate: sum, max or min (default sum).
	Op string `json:"op,omitempty"`
	// Colorer names the coloring backend Networks built from this spec use
	// for Color runs: sec7, dplus1 or hsb (default sec7). Aggregation-only
	// sweeps are unaffected; the field exists so one spec document pins
	// every protocol choice.
	Colorer string `json:"colorer,omitempty"`
	// Exec names the execution mode: auto, goroutines or stepped (default
	// auto). Every mode produces bit-identical transcripts, so the field
	// only pins memory/wall-clock behavior for reproducible measurement.
	Exec string `json:"exec,omitempty"`
}

// specFieldError reports a validation failure against one named field of a
// spec document, so clients see which field to fix.
func specFieldError(field, format string, args ...any) error {
	return fmt.Errorf("mcnet: spec field %q: %s", field, fmt.Sprintf(format, args...))
}

// topologyByName resolves a spec's topology name and parameter. The empty
// name means crowd; param = 0 means the generator's default.
func topologyByName(name string, param float64) (Topology, error) {
	switch name {
	case "", "crowd":
		if param != 0 {
			return nil, specFieldError("topology_param", "%v given but topology %q takes no parameter", param, "crowd")
		}
		return Crowd, nil
	case "grid":
		if param != 0 {
			return nil, specFieldError("topology_param", "%v given but topology %q takes no parameter", param, "grid")
		}
		return Grid, nil
	case "uniform":
		if param == 0 {
			param = 12
		}
		if param < 0 || param != param {
			return nil, specFieldError("topology_param", "target degree %v must be > 0", param)
		}
		return Uniform(param), nil
	case "line", "ring":
		if param == 0 {
			param = 0.7
		}
		if param <= 0 || param > 1 || param != param {
			return nil, specFieldError("topology_param", "spacing fraction %v must be in (0, 1]", param)
		}
		if name == "line" {
			return Line(param), nil
		}
		return Ring(param), nil
	default:
		return nil, specFieldError("topology", "unknown topology %q (valid: crowd, uniform, grid, line, ring)", name)
	}
}

// JamModelNames lists the valid jam-model spec/CLI names in declaration
// order — the single list validation errors and CLI usage strings print.
func JamModelNames() []string {
	return []string{"oblivious", "roundrobin", "reactive", "adaptive"}
}

// ByzStrategyNames lists the valid Byzantine-strategy spec/CLI names.
func ByzStrategyNames() []string {
	return []string{"corrupt", "equivocate", "silent"}
}

// jamModelByName resolves a spec's jam-model name; empty means oblivious.
func jamModelByName(name string) (JamModel, error) {
	switch strings.ToLower(name) {
	case "", "oblivious":
		return JamOblivious, nil
	case "roundrobin":
		return JamRoundRobin, nil
	case "reactive":
		return JamReactive, nil
	case "adaptive":
		return JamAdaptive, nil
	default:
		return 0, specFieldError("jam_model", "unknown jam model %q (valid: %s)", name, strings.Join(JamModelNames(), ", "))
	}
}

// jamModelName is the inverse of jamModelByName for the known models.
func jamModelName(m JamModel) (string, error) {
	switch m {
	case JamOblivious, JamRoundRobin, JamReactive, JamAdaptive:
		return m.String(), nil
	default:
		return "", fmt.Errorf("mcnet: jam model %d has no spec name", int(m))
	}
}

// byzStrategyByName resolves a spec's Byzantine-strategy name; empty means
// corrupt.
func byzStrategyByName(name string) (ByzStrategy, error) {
	st, err := ParseByzStrategy(strings.ToLower(name))
	if err != nil {
		return 0, specFieldError("byz_strategy", "unknown byzantine strategy %q (valid: %s)", name, strings.Join(ByzStrategyNames(), ", "))
	}
	return st, nil
}

// aggregatorByName resolves a spec's op name; empty means sum.
func aggregatorByName(name string) (Aggregator, error) {
	switch strings.ToLower(name) {
	case "", "sum":
		return Sum, nil
	case "max":
		return Max, nil
	case "min":
		return Min, nil
	default:
		return nil, specFieldError("op", "unknown aggregate %q (valid: sum, max, min)", name)
	}
}

// colorerByName validates a spec's coloring backend name against the
// registry; empty means the sec7 default.
func colorerByName(name string) error {
	if _, err := coloring.ByName(name); err != nil {
		return specFieldError("colorer", "%v", err)
	}
	return nil
}

// Validate checks every field of the document and returns the first
// field-level error, or nil for a runnable spec. It applies exactly the
// rules Scenario compilation applies, so a validated spec always compiles.
func (sp ScenarioSpec) Validate() error {
	if sp.N < 2 {
		return specFieldError("n", "%d must be ≥ 2", sp.N)
	}
	if _, err := topologyByName(sp.Topology, sp.TopologyParam); err != nil {
		return err
	}
	channels := sp.Channels
	if channels == 0 {
		channels = 4
	}
	if channels < 1 {
		return specFieldError("channels", "%d must be ≥ 1", sp.Channels)
	}
	for i, lp := range sp.Loss {
		if lp < 0 || lp > 1 || lp != lp {
			return specFieldError(fmt.Sprintf("loss[%d]", i), "%v must be in [0, 1]", lp)
		}
	}
	for i, k := range sp.Jam {
		if k < 0 {
			return specFieldError(fmt.Sprintf("jam[%d]", i), "%d must be ≥ 0", k)
		}
		if k >= channels {
			return specFieldError(fmt.Sprintf("jam[%d]", i), "%d jams every one of %d channels; leave at least one usable", k, channels)
		}
	}
	for i, cr := range sp.Churn {
		if cr < 0 || cr > 1 || cr != cr {
			return specFieldError(fmt.Sprintf("churn[%d]", i), "%v must be in [0, 1]", cr)
		}
	}
	for i, bf := range sp.Byz {
		if bf < 0 || bf > 1 || bf != bf {
			return specFieldError(fmt.Sprintf("byz[%d]", i), "%v must be in [0, 1]", bf)
		}
	}
	if _, err := byzStrategyByName(sp.ByzStrategy); err != nil {
		return err
	}
	if _, err := jamModelByName(sp.JamModel); err != nil {
		return err
	}
	if sp.Seeds < 0 {
		return specFieldError("seeds", "%d must be ≥ 0 (0 means 1)", sp.Seeds)
	}
	if _, err := aggregatorByName(sp.Op); err != nil {
		return err
	}
	if err := colorerByName(sp.Colorer); err != nil {
		return err
	}
	if err := execModeByName(sp.Exec); err != nil {
		return err
	}
	return nil
}

// execModeByName validates a spec's execution-mode name; empty means auto.
func execModeByName(name string) error {
	if _, err := ParseExecMode(strings.ToLower(name)); err != nil {
		return specFieldError("exec", "%v", err)
	}
	return nil
}

// Scenario converts the validated document into a runnable Scenario. The
// returned scenario carries no Workers or Progress — set those per
// execution.
func (sp ScenarioSpec) Scenario() (Scenario, error) {
	if err := sp.Validate(); err != nil {
		return Scenario{}, err
	}
	topo, err := topologyByName(sp.Topology, sp.TopologyParam)
	if err != nil {
		return Scenario{}, err
	}
	model, err := jamModelByName(sp.JamModel)
	if err != nil {
		return Scenario{}, err
	}
	byzStrategy, err := byzStrategyByName(sp.ByzStrategy)
	if err != nil {
		return Scenario{}, err
	}
	op, err := aggregatorByName(sp.Op)
	if err != nil {
		return Scenario{}, err
	}
	channels := sp.Channels
	if channels == 0 {
		channels = 4
	}
	opts := []Option{WithTopology(topo), Channels(channels)}
	if sp.Colorer != "" {
		opts = append(opts, Colorer(sp.Colorer))
	}
	if sp.Exec != "" {
		mode, err := ParseExecMode(strings.ToLower(sp.Exec))
		if err != nil {
			return Scenario{}, specFieldError("exec", "%v", err)
		}
		opts = append(opts, Exec(mode))
	}
	return Scenario{
		Name:        sp.Name,
		N:           sp.N,
		Options:     opts,
		Loss:        append([]float64(nil), sp.Loss...),
		Jam:         append([]int(nil), sp.Jam...),
		Churn:       append([]float64(nil), sp.Churn...),
		Byz:         append([]float64(nil), sp.Byz...),
		ByzStrategy: byzStrategy,
		JamModel:    model,
		Seeds:       sp.Seeds,
		BaseSeed:    sp.BaseSeed,
		Op:          op,
	}, nil
}

// Compile expands the document straight into its executable sweep —
// shorthand for Scenario() followed by Scenario.Compile.
func (sp ScenarioSpec) Compile() (*Sweep, error) {
	sc, err := sp.Scenario()
	if err != nil {
		return nil, err
	}
	return sc.Compile()
}

// ParseScenarioSpec decodes and validates one spec document. Decoding is
// strict: unknown fields are rejected (they are usually typos), trailing
// garbage after the document is an error, and validation failures name the
// offending field.
func ParseScenarioSpec(data []byte) (ScenarioSpec, error) {
	var sp ScenarioSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return ScenarioSpec{}, fmt.Errorf("mcnet: parsing scenario spec: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil || len(extra) > 0 {
		return ScenarioSpec{}, fmt.Errorf("mcnet: parsing scenario spec: trailing data after document")
	}
	if err := sp.Validate(); err != nil {
		return ScenarioSpec{}, err
	}
	return sp, nil
}

// runSpecWire is RunSpec's JSON shape: jam model and op by name, churn as
// a nested object elided when empty.
type runSpecWire struct {
	Seed        uint64         `json:"seed"`
	Loss        float64        `json:"loss,omitempty"`
	Jam         int            `json:"jam,omitempty"`
	JamModel    string         `json:"jam_model,omitempty"`
	Churn       *churnSpecWire `json:"churn,omitempty"`
	Byz         float64        `json:"byz,omitempty"`
	ByzStrategy string         `json:"byz_strategy,omitempty"`
	Faulted     bool           `json:"faulted,omitempty"`
	Values      []int64        `json:"values,omitempty"`
	Op          string         `json:"op,omitempty"`
}

type churnSpecWire struct {
	CrashAt map[int]int `json:"crash_at,omitempty"`
	Rate    float64     `json:"rate,omitempty"`
	From    int         `json:"from,omitempty"`
	Until   int         `json:"until,omitempty"`
}

// MarshalJSON encodes the spec with jam model and aggregate by name. Only
// the built-in aggregators (Sum, Max, Min) are representable; a custom
// Aggregator yields an error rather than a document that cannot round-trip.
func (rs RunSpec) MarshalJSON() ([]byte, error) {
	w := runSpecWire{
		Seed:    rs.Seed,
		Loss:    rs.Loss,
		Jam:     rs.Jam,
		Byz:     rs.Byz,
		Faulted: rs.Faulted,
		Values:  rs.Values,
	}
	if rs.Jam != 0 || rs.JamModel != JamOblivious {
		name, err := jamModelName(rs.JamModel)
		if err != nil {
			return nil, err
		}
		w.JamModel = name
	}
	if rs.Byz != 0 || rs.ByzStrategy != ByzCorrupt {
		if !validByzStrategy(rs.ByzStrategy) {
			return nil, fmt.Errorf("mcnet: byzantine strategy %d has no spec name", int(rs.ByzStrategy))
		}
		w.ByzStrategy = rs.ByzStrategy.String()
	}
	if rs.Churn.Rate != 0 || len(rs.Churn.CrashAt) > 0 || rs.Churn.From != 0 || rs.Churn.Until != 0 {
		w.Churn = &churnSpecWire{
			CrashAt: rs.Churn.CrashAt,
			Rate:    rs.Churn.Rate,
			From:    rs.Churn.From,
			Until:   rs.Churn.Until,
		}
	}
	if rs.Op != nil {
		name := strings.ToLower(rs.Op.Name())
		if _, err := aggregatorByName(name); err != nil {
			return nil, fmt.Errorf("mcnet: aggregator %q is not a built-in (sum, max, min) and cannot be serialized", rs.Op.Name())
		}
		w.Op = name
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes and validates one run spec: ranges are checked
// with field-level errors and names are resolved to the built-ins, so a
// decoded spec is immediately runnable.
func (rs *RunSpec) UnmarshalJSON(data []byte) error {
	var w runSpecWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("mcnet: parsing run spec: %w", err)
	}
	if w.Loss < 0 || w.Loss > 1 || w.Loss != w.Loss {
		return specFieldError("loss", "%v must be in [0, 1]", w.Loss)
	}
	if w.Jam < 0 {
		return specFieldError("jam", "%d must be ≥ 0", w.Jam)
	}
	model, err := jamModelByName(w.JamModel)
	if err != nil {
		return err
	}
	if w.Byz < 0 || w.Byz > 1 || w.Byz != w.Byz {
		return specFieldError("byz", "%v must be in [0, 1]", w.Byz)
	}
	byzStrategy, err := byzStrategyByName(w.ByzStrategy)
	if err != nil {
		return err
	}
	var churn ChurnSpec
	if w.Churn != nil {
		if w.Churn.Rate < 0 || w.Churn.Rate > 1 || w.Churn.Rate != w.Churn.Rate {
			return specFieldError("churn.rate", "%v must be in [0, 1]", w.Churn.Rate)
		}
		churn = ChurnSpec{
			CrashAt: w.Churn.CrashAt,
			Rate:    w.Churn.Rate,
			From:    w.Churn.From,
			Until:   w.Churn.Until,
		}
	}
	var op Aggregator
	if w.Op != "" {
		if op, err = aggregatorByName(w.Op); err != nil {
			return err
		}
	}
	*rs = RunSpec{
		Seed:        w.Seed,
		Loss:        w.Loss,
		Jam:         w.Jam,
		JamModel:    model,
		Churn:       churn,
		Byz:         w.Byz,
		ByzStrategy: byzStrategy,
		Faulted:     w.Faulted,
		Values:      w.Values,
		Op:          op,
	}
	return nil
}
