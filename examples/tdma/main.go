// TDMA: color a network with the Sec. 7 algorithm and use the palette as a
// collision-free transmission schedule, then verify over the SINR layer
// that every scheduled transmission is decodable by all neighbors.
//
// Run with: go run ./examples/tdma
package main

import (
	"fmt"
	"log"

	"mcnet/internal/coloring"
	"mcnet/internal/core"
	"mcnet/internal/expt"
	"mcnet/internal/graph"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

func main() {
	const (
		n        = 64
		channels = 4
		seed     = 11
	)
	p := model.Default(channels, n)
	pos := expt.Crowd(p, n, seed)

	cfg := core.DefaultConfig(p)
	cfg.DeltaHat = n
	cfg.PhiMax = 4
	cfg.HopBound = 2
	pl := core.NewPlan(p, cfg)
	engine := sim.NewEngine(phy.NewField(p, pos), seed)
	res, err := coloring.Run(engine, pl, coloring.DefaultConfig(), seed)
	if err != nil {
		log.Fatal(err)
	}
	conflicts, uncolored, palette := coloring.Validate(pos, p.REps(), res)
	fmt.Printf("colored %d nodes: palette=%d conflicts=%d uncolored=%d\n",
		n-uncolored, palette, conflicts, uncolored)

	// Use colors as a TDMA schedule: in slot t, nodes with color t
	// transmit. Count how many neighbor links decode in a full cycle.
	maxColor := 0
	for _, r := range res {
		if r.Color > maxColor {
			maxColor = r.Color
		}
	}
	g := graph.Build(pos, p.REps())
	field := phy.NewField(model.Default(1, n), pos)
	delivered, links := 0, 0
	for slot := 0; slot <= maxColor; slot++ {
		var txs []phy.Tx
		var rxs []phy.Rx
		for i, r := range res {
			if r.Color == slot {
				txs = append(txs, phy.Tx{Node: i, Channel: 0, Msg: i})
			} else {
				rxs = append(rxs, phy.Rx{Node: i, Channel: 0})
			}
		}
		recs := field.Resolve(txs, rxs)
		for k, rec := range recs {
			if !rec.Decoded {
				continue
			}
			// Count decoded messages from graph neighbors.
			listener := rxs[k].Node
			for _, nb := range g.Neighbors(listener) {
				if int(nb) == rec.From {
					delivered++
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		links += g.Degree(i)
	}
	fmt.Printf("TDMA cycle of %d slots: %d/%d directed neighbor links delivered\n",
		maxColor+1, delivered, links)
	fmt.Println("(a proper coloring lets every node broadcast to all")
	fmt.Println(" neighbors once per cycle with zero intra-cycle collisions)")
}
