// TDMA: color a network with the Sec. 7 algorithm through the mcnet facade
// and use the palette as a collision-free transmission schedule, verifying
// over the SINR layer that scheduled broadcasts reach all neighbors.
//
// Run with: go run ./examples/tdma
package main

import (
	"context"
	"fmt"
	"log"

	"mcnet"
)

func main() {
	const (
		n        = 64
		channels = 4
		seed     = 11
	)
	net, err := mcnet.New(n,
		mcnet.Channels(channels),
		mcnet.Seed(seed),
		mcnet.WithTopology(mcnet.Crowd),
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := net.Color(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("colored %d nodes: palette=%d conflicts=%d uncolored=%d\n",
		net.N()-res.Uncolored, res.Palette, res.Conflicts, res.Uncolored)

	// Use colors as a TDMA schedule: in cycle slot t, nodes with color t
	// transmit; count how many neighbor links decode in a full cycle.
	rep, err := net.VerifyTDMA(res.Colors())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TDMA cycle of %d slots: %d/%d directed neighbor links delivered\n",
		rep.Cycle, rep.Delivered, rep.Links)
	fmt.Println("(a proper coloring lets every node broadcast to all")
	fmt.Println(" neighbors once per cycle with zero intra-cycle collisions)")
}
