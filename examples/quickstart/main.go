// Quickstart: aggregate a sum over a dense sensor cluster using the public
// mcnet facade, and print what the network learned.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mcnet"
)

func main() {
	const n = 48 // sensors

	// One dense cluster on 4 radio channels; all pipeline sizing (Δ̂, TDMA
	// period, hop bound) is derived from the topology.
	net, err := mcnet.New(n,
		mcnet.Channels(4),
		mcnet.Seed(42),
		mcnet.WithTopology(mcnet.Crowd),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Each sensor holds a reading; the network computes the sum.
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(10 + i)
	}

	res, err := net.Aggregate(context.Background(), values, mcnet.Sum)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %d nodes, %d channels\n", net.N(), net.Channels())
	fmt.Printf("structure: %d dominator(s), %d reporter(s), %d follower(s)\n",
		res.Dominators, res.Reporters, res.Followers)
	fmt.Printf("true sum: %d\n", res.Value)
	fmt.Printf("informed: %d/%d nodes, exact: %d/%d\n", res.Informed, net.N(), res.Exact, net.N())
	fmt.Printf("total schedule: %d slots (structure %d + aggregation %d)\n",
		res.BudgetSlots, res.BuildSlots, res.BudgetSlots-res.BuildSlots)
	fmt.Printf("observed: last follower acked %d slots into aggregation\n", res.AckSlots)
}
