// Quickstart: aggregate a sum over a dense sensor cluster using the
// multichannel pipeline, and print what every node learned.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mcnet/internal/agg"
	"mcnet/internal/core"
	"mcnet/internal/expt"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

func main() {
	const (
		n        = 48 // sensors
		channels = 4  // available radio channels
		seed     = 42
	)

	// Model: default SINR parameters (α=3, β=1.5, R_T=1) with F channels
	// and a size estimate the nodes are allowed to know.
	p := model.Default(channels, n)

	// Topology: one dense cluster (everyone within a cluster radius).
	pos := expt.Crowd(p, n, seed)

	// Each sensor holds a reading; the network computes the sum.
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(10 + i)
		want += values[i]
	}

	// Build the aggregation structure and run data aggregation.
	cfg := core.DefaultConfig(p)
	cfg.DeltaHat = n // clusters can be as large as the network
	cfg.PhiMax = 4   // dense field: few cluster colors needed
	cfg.HopBound = 2
	pl := core.NewPlan(p, cfg)
	engine := sim.NewEngine(phy.NewField(p, pos), seed)

	res, err := core.Run(engine, pl, values, agg.Sum, seed)
	if err != nil {
		log.Fatal(err)
	}

	informed, exact, dominators, reporters := 0, 0, 0, 0
	for _, r := range res {
		if r.Ok {
			informed++
			if r.Value == want {
				exact++
			}
		}
		if r.IsDominator {
			dominators++
		}
		if r.IsReporter {
			reporters++
		}
	}
	fmt.Printf("network: %d nodes, %d channels\n", n, channels)
	fmt.Printf("structure: %d dominator(s), %d reporter(s)\n", dominators, reporters)
	fmt.Printf("true sum: %d\n", want)
	fmt.Printf("informed: %d/%d nodes, exact: %d/%d\n", informed, n, exact, n)
	fmt.Printf("total schedule: %d slots (structure %d + aggregation %d)\n",
		pl.Offsets.End, pl.Offsets.Followers, pl.Offsets.End-pl.Offsets.Followers)
}
