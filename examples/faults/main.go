// Faults: run the aggregation pipeline under message loss, channel jamming
// and node churn, inspect the per-run FaultReport, then sweep a fault grid
// with the scenario runner. Every run is deterministic: same seed, same
// faults, same transcript.
//
// Run with: go run ./examples/faults
package main

import (
	"context"
	"fmt"
	"log"

	"mcnet"
)

func main() {
	const n = 64

	// A dense crowd on 4 channels with 5% message loss and two sensors
	// crashing mid-run. (Jamming composes the same way — the sweep below
	// adds it; note how even mild faults break exactness while informedness
	// and survivor consensus degrade gracefully, because the pipeline's
	// convergecast has no redundancy.)
	net, err := mcnet.New(n,
		mcnet.Channels(4),
		mcnet.Seed(42),
		mcnet.WithTopology(mcnet.Crowd),
		mcnet.Loss(0.05),
		mcnet.Churn(mcnet.ChurnSpec{CrashAt: map[int]int{3: 500, 17: 2000}}),
	)
	if err != nil {
		log.Fatal(err)
	}

	values := make([]int64, n)
	for i := range values {
		values[i] = int64(10 + i)
	}
	res, err := net.Aggregate(context.Background(), values, mcnet.Sum)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %d nodes, %d channels, faults on\n", net.N(), net.Channels())
	fmt.Printf("informed: %d/%d, exact: %d/%d\n", res.Informed, n, res.Exact, n)
	fr := res.Faults
	fmt.Printf("fault layer: %d delivered, %d lost, %d slot-channels jammed\n",
		fr.Delivered, fr.Lost, fr.JammedSlotChannels)
	fmt.Printf("churn: crashed %v; %d/%d survivors informed, %d agree on one aggregate\n",
		fr.CrashedNodes, fr.SurvivorsInformed, fr.Survivors, fr.SurvivorsAgreeing)

	// Sweep a small fault grid; the table is stable for a fixed base seed.
	tb, err := mcnet.RunScenario(context.Background(), mcnet.Scenario{
		Name:    "faults example",
		N:       48,
		Options: []mcnet.Option{mcnet.Channels(4), mcnet.WithTopology(mcnet.Crowd)},
		Loss:    []float64{0, 0.1},
		Jam:     []int{0, 1},
		Seeds:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(tb.Render())
}
