// Chain: the paper's lower-bound instance (Sec. 1, via Moscibroda &
// Wattenhofer [25]). On the exponential chain x_i = 2^i with uniform power
// and β ≥ 2^{1/α}, transmissions directed toward the sink serialize: any
// lower sender injects interference at least as strong as the signal at
// every higher receiver, so at most one sink-directed link decodes per
// slot. Aggregating n values therefore needs Ω(n) = Ω(Δ) slots on one
// channel — the term the multichannel structure divides by F. A uniform
// line is run as a control where spatial reuse works.
//
// This is experiment E8 of the evaluation suite, run here through the
// public facade.
//
// Run with: go run ./examples/chain
package main

import (
	"fmt"
	"log"

	"mcnet"
)

func main() {
	tb, err := mcnet.RunExperiment("e8", mcnet.ExperimentOptions{Seeds: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tb.Render())
	fmt.Println("the chain admits no sink-directed parallelism: aggregating n values")
	fmt.Println("needs ≥ n-1 slots on one channel, while F channels cut this to ≈ (n-1)/F —")
	fmt.Println("the Δ/F term the multichannel aggregation structure exploits.")
}
