// Chain: the paper's lower-bound instance (Sec. 1, via Moscibroda &
// Wattenhofer [25]). On the exponential chain x_i = 2^i with uniform power
// and β ≥ 2^{1/α}, transmissions directed toward the sink serialize: any
// lower sender injects interference at least as strong as the signal at
// every higher receiver, so at most one sink-directed link decodes per
// slot. Aggregating n values therefore needs Ω(n) = Ω(Δ) slots on one
// channel — the term the multichannel structure divides by F. A uniform
// line is run as a control where spatial reuse works.
//
// Run with: go run ./examples/chain
package main

import (
	"fmt"
	"log"
	"math"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
	"mcnet/internal/topology"
)

type linkMsg struct{ To int }

func main() {
	const (
		n     = 20
		slots = 300
		seed  = 3
	)
	p := model.Default(1, n)
	fmt.Printf("SINR: α=%.0f β=%.2f; serialization condition β ≥ 2^(1/α) = %.3f holds: %v\n\n",
		p.Alpha, p.Beta, math.Pow(2, 1/p.Alpha), p.Beta >= math.Pow(2, 1/p.Alpha))

	run := func(name string, pos []geo.Point, span float64) {
		// Raise the uniform power so R_T covers the instance span: the
		// chain argument is about interference, not range.
		pp := p
		pp.Power = pp.Beta * pp.Noise * math.Pow(span, pp.Alpha)
		field := phy.NewField(pp, pos)
		engine := sim.NewEngine(field, seed)
		maxParallel, total := 0, 0
		engine.Trace = func(_ int, _ []phy.Tx, rxs []phy.Rx, recs []phy.Reception) {
			links := 0
			for k, r := range recs {
				if m, ok := r.Msg.(linkMsg); r.Decoded && ok && m.To == rxs[k].Node {
					links++
				}
			}
			total += links
			if links > maxParallel {
				maxParallel = links
			}
		}
		progs := make([]sim.Program, n)
		for i := range progs {
			progs[i] = func(ctx *sim.Ctx) {
				for s := 0; s < slots; s++ {
					if ctx.ID() > 0 && ctx.Rand.Float64() < 0.5 {
						ctx.Transmit(0, linkMsg{To: ctx.ID() - 1})
					} else {
						ctx.Listen(0)
					}
				}
			}
		}
		if _, err := engine.Run(progs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s max parallel sink-links: %d   mean/slot: %.2f\n",
			name, maxParallel, float64(total)/slots)
	}

	run("exponential chain x_i=2^i:", topology.ExponentialChain(n, 1), math.Pow(2, n+1))
	run("uniform line (control):", topology.Line(n, 0.5), 1)

	fmt.Println("\nthe chain admits no sink-directed parallelism: aggregating n values")
	fmt.Println("needs ≥ n-1 slots on one channel, while F channels cut this to ≈ (n-1)/F —")
	fmt.Println("the Δ/F term the multichannel aggregation structure exploits.")
}
