// Sensorfield: the paper's motivating scenario — a dense sensor deployment
// computing an aggregate (here: maximum temperature), demonstrating how
// adding channels shortens the contention phase.
//
// Run with: go run ./examples/sensorfield
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mcnet"
)

func main() {
	const (
		n    = 96
		seed = 7
	)
	// Synthetic readings: base temperature plus hotspots.
	r := rand.New(rand.NewSource(seed))
	temps := make([]int64, n)
	var hottest int64 = -1 << 30
	for i := range temps {
		temps[i] = 180 + int64(r.Intn(40)) // tenths of °C
		if r.Intn(16) == 0 {
			temps[i] += 150 // a sensor near a heat source
		}
		if temps[i] > hottest {
			hottest = temps[i]
		}
	}
	fmt.Printf("deployment: %d sensors in one interference domain\n", n)
	fmt.Printf("true max reading: %.1f°C\n\n", float64(hottest)/10)
	fmt.Printf("%-10s %-14s %-14s %-8s\n", "channels", "contention", "total_slots", "correct")

	for _, channels := range []int{1, 2, 4, 8} {
		net, err := mcnet.New(n,
			mcnet.Channels(channels),
			mcnet.Seed(seed),
			mcnet.WithTopology(mcnet.Crowd),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := net.Aggregate(context.Background(), temps, mcnet.Max)
		if err != nil {
			log.Fatal(err)
		}
		correct := fmt.Sprintf("%d/%d", res.Exact, net.N())
		fmt.Printf("%-10d %-14d %-14d %-8s\n", channels, res.AckSlots, res.AggSlots, correct)
	}
	fmt.Println("\ncontention = slots until the last sensor's reading was")
	fmt.Println("acknowledged by a reporter: the Δ/F term of Theorem 22.")
}
