package mcnet_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mcnet"
)

// workerCounts is the satellite matrix every identity test sweeps: serial,
// two workers, and whatever the host offers.
func workerCounts() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

// TestRunScenarioParallelIdentity checks the tentpole determinism
// guarantee on the scenario layer: the emitted table is byte-identical at
// every worker count.
func TestRunScenarioParallelIdentity(t *testing.T) {
	sc := mcnet.Scenario{
		Name:  "identity",
		N:     24,
		Loss:  []float64{0, 0.1},
		Jam:   []int{0, 1},
		Churn: []float64{0, 0.1},
		Seeds: 3,
	}
	var serial string
	for _, workers := range workerCounts() {
		sc.Workers = workers
		tb, err := mcnet.RunScenario(context.Background(), sc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := tb.Render() + "\n" + tb.CSV()
		if workers == 1 {
			serial = out
			continue
		}
		if out != serial {
			t.Fatalf("workers=%d table differs from serial output:\n%s\n--- vs ---\n%s", workers, out, serial)
		}
	}
}

// TestExperimentParallelIdentity checks experiment tables are byte-identical
// across worker counts; e1 exercises the plain grid sweep, f2 the fault
// sweeps with their point-list flattening, e10 the skip-on-disconnected
// fold, and f4 the Byzantine degradation sweep of the acceptance criterion:
// its table must be byte-identical at every worker count.
func TestExperimentParallelIdentity(t *testing.T) {
	for _, id := range []string{"e1", "f2", "f4", "e10"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var serial string
			for _, workers := range workerCounts() {
				tb, err := mcnet.RunExperiment(id, mcnet.ExperimentOptions{
					Seeds: 2, Quick: true, Parallel: workers,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				out := tb.CSV()
				if workers == 1 {
					serial = out
					continue
				}
				if out != serial {
					t.Fatalf("workers=%d table differs from serial output:\n%s\n--- vs ---\n%s", workers, out, serial)
				}
			}
		})
	}
}

// TestRunBatchSharedDeployment checks that specs sharing a seed share one
// deployment and still reproduce exactly what per-run construction yields.
func TestRunBatchSharedDeployment(t *testing.T) {
	specs := []mcnet.RunSpec{
		{Seed: 7, Faulted: true},
		{Seed: 7, Loss: 0.2},
		{Seed: 8, Jam: 1, JamModel: mcnet.JamRoundRobin},
		{Seed: 7, Churn: mcnet.ChurnSpec{Rate: 0.1}},
	}
	batch, err := mcnet.RunBatch(context.Background(), 20, nil, specs, mcnet.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(batch), len(specs))
	}
	for i, rs := range specs {
		opts := []mcnet.Option{
			mcnet.Seed(rs.Seed),
			mcnet.Loss(rs.Loss),
			mcnet.Jamming(rs.Jam, rs.JamModel),
			mcnet.Churn(rs.Churn),
		}
		nw, err := mcnet.New(20, opts...)
		if err != nil {
			t.Fatal(err)
		}
		values := make([]int64, nw.N())
		for j := range values {
			values[j] = int64(j + 1)
		}
		want, err := nw.Aggregate(context.Background(), values, mcnet.Sum)
		if err != nil {
			t.Fatal(err)
		}
		got := batch[i]
		if got.Value != want.Value || got.Informed != want.Informed ||
			got.Exact != want.Exact || got.Slots != want.Slots ||
			got.AckSlots != want.AckSlots || got.AggSlots != want.AggSlots {
			t.Errorf("spec %d: batch result %+v differs from per-run construction %+v", i, got, want)
		}
		if got.Faults == nil {
			t.Errorf("spec %d: batch result missing fault report", i)
		} else if want.Faults != nil && got.Faults.Lost != want.Faults.Lost {
			t.Errorf("spec %d: lost = %d, want %d", i, got.Faults.Lost, want.Faults.Lost)
		}
	}
}

// TestRunBatchValidation covers the batch-level argument checks.
func TestRunBatchValidation(t *testing.T) {
	_, err := mcnet.RunBatch(context.Background(), 16, nil,
		[]mcnet.RunSpec{{Seed: 1}}, mcnet.BatchOptions{Workers: -1})
	if err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("negative workers: err = %v, want workers error", err)
	}
	_, err = mcnet.RunBatch(context.Background(), 16, nil,
		[]mcnet.RunSpec{{Seed: 1, Loss: 1.5}}, mcnet.BatchOptions{})
	if err == nil || !strings.Contains(err.Error(), "loss") {
		t.Fatalf("bad loss: err = %v, want loss error", err)
	}
}

// TestScenarioAxisValidation checks the sweep axes are rejected up front
// with errors naming the offending value.
func TestScenarioAxisValidation(t *testing.T) {
	base := mcnet.Scenario{N: 16, Seeds: 1}
	cases := []struct {
		name string
		mut  func(*mcnet.Scenario)
		want string
	}{
		{"loss below range", func(sc *mcnet.Scenario) { sc.Loss = []float64{-0.1} }, "loss"},
		{"loss above range", func(sc *mcnet.Scenario) { sc.Loss = []float64{1.5} }, "loss"},
		{"negative jam", func(sc *mcnet.Scenario) { sc.Jam = []int{-1} }, "jam"},
		{"jam covers channels", func(sc *mcnet.Scenario) { sc.Jam = []int{4} }, "jam"},
		{"negative churn", func(sc *mcnet.Scenario) { sc.Churn = []float64{-0.2} }, "churn"},
		{"churn above range", func(sc *mcnet.Scenario) { sc.Churn = []float64{1.1} }, "churn"},
		{"unknown jam model", func(sc *mcnet.Scenario) { sc.JamModel = mcnet.JamModel(9) }, "jam model"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base
			tc.mut(&sc)
			_, err := mcnet.RunScenario(context.Background(), sc)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
	// A jam count below the (overridden) channel count passes validation.
	sc := base
	sc.Options = []mcnet.Option{mcnet.Channels(8)}
	sc.Jam = []int{6}
	if _, err := mcnet.RunScenario(context.Background(), sc); err != nil {
		t.Fatalf("jam 6 of 8 channels should be valid: %v", err)
	}
}

// TestRunScenarioCancellationMidBatch checks a cancelled context aborts the
// sweep promptly with ctx.Err() — including between the seed repetitions of
// one grid point — and leaks no goroutines.
func TestRunScenarioCancellationMidBatch(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	sc := mcnet.Scenario{
		N:     24,
		Loss:  []float64{0}, // a single grid point: cancellation must hit between seeds
		Seeds: 64,
		// Serial pool: cancel after the first completed run, then require the
		// sweep to die long before all 64 repetitions finish.
		Workers: 1,
		Progress: func(d, total int) {
			if done.Add(1) == 1 {
				cancel()
			}
		},
	}
	start := time.Now()
	_, err := mcnet.RunScenario(ctx, sc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := done.Load(); n > 3 {
		t.Fatalf("%d runs completed after cancellation, want ≤ 3", n)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines grew from %d to %d after cancelled sweep", before, now)
	}
}

// TestRunScenarioProgressTotals checks the progress callback covers every
// run exactly once.
func TestRunScenarioProgressTotals(t *testing.T) {
	var calls, lastDone, total atomic.Int64
	sc := mcnet.Scenario{
		N:     16,
		Loss:  []float64{0, 0.1},
		Seeds: 2,
		Progress: func(done, tot int) {
			calls.Add(1)
			lastDone.Store(int64(done))
			total.Store(int64(tot))
		},
	}
	if _, err := mcnet.RunScenario(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 || lastDone.Load() != 4 || total.Load() != 4 {
		t.Fatalf("progress calls=%d lastDone=%d total=%d, want 4/4/4",
			calls.Load(), lastDone.Load(), total.Load())
	}
}
