package mcnet

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mcnet/internal/coloring"
	"mcnet/internal/core"
	"mcnet/internal/fault"
	"mcnet/internal/geo"
	"mcnet/internal/graph"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// Network is the public entry point: a fixed node deployment under the SINR
// model, ready to run the paper's protocols. Build one with New, then call
// Aggregate or Color; every run is a deterministic function of the
// construction options (topology, seed, SINR parameters).
//
// A Network is safe for concurrent use; each run simulates on its own
// engine.
type Network struct {
	params model.Params
	topo   Topology
	seed   uint64
	pos    []geo.Point
	cfg    core.Config
	plan   *core.Plan

	maxSlots    int
	parallelism int
	exact       bool
	farFieldTol float64 // <0 = resolver default, 0 = exact, >0 = tolerance
	cellFrac    float64 // 0 = resolver default
	kernel32    bool    // divide-free float32 SINR kernel

	// faults is the fault/dynamics spec; faulted records that a fault
	// option was given (possibly at zero intensity), which attaches the
	// injection layer to every run and a FaultReport to results.
	faults  fault.Spec
	faulted bool

	colorer string // coloring backend name; "" = sec7

	mu        sync.Mutex
	observers []func(Event)
	// dispatchMu serializes observer calls across concurrent runs, so one
	// registered observer never runs reentrantly even when two Aggregate
	// calls (each with its own engine) overlap.
	dispatchMu sync.Mutex
}

// New builds a network of n nodes. Defaults: 4 channels, the Crowd
// topology, seed 1, the paper's standard SINR parameters (α=3, β=1.5,
// R_T=1), and pipeline sizing (Δ̂, φ, hop bound) derived from the topology —
// see the options for overrides. Topologies with an intrinsic size (e.g.
// Hotspot) may override n; N reports the actual count.
func New(n int, opts ...Option) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("mcnet: n = %d must be ≥ 2", n)
	}
	s := defaultSettings()
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return nil, err
		}
	}
	if v, ok := s.topo.(topologyValidator); ok {
		if err := v.validate(); err != nil {
			return nil, err
		}
	}

	nEst := s.nEstimate
	if nEst == 0 {
		nEst = n
	}
	p := model.Params{
		Alpha:     s.alpha,
		Beta:      s.beta,
		Noise:     s.noise,
		Power:     s.beta * s.noise, // R_T = (P/(β·N))^{1/α} = 1
		Epsilon:   s.epsilon,
		Channels:  s.channels,
		NEstimate: nEst,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if s.kernel32 && s.alpha != 3 {
		return nil, fmt.Errorf("mcnet: Float32Kernel requires alpha = 3, have %v", s.alpha)
	}

	g := geometryOf(p)
	pts := s.topo.Layout(n, s.seed, g)
	if len(pts) < 2 {
		return nil, fmt.Errorf("mcnet: topology %q produced %d nodes, need ≥ 2", s.topo.Name(), len(pts))
	}
	if len(pts) != n {
		n = len(pts)
		if s.nEstimate == 0 {
			p.NEstimate = n
		}
	}

	// Sizing: topology-derived defaults, generic fallbacks for zero fields,
	// explicit options last.
	d := s.topo.Defaults(n, g)
	if d.DeltaHat <= 0 {
		d.DeltaHat = n
	}
	if d.PhiMax <= 0 {
		d.PhiMax = 10
	}
	if d.HopBound <= 0 {
		d.HopBound = 8
	}
	if s.deltaHat > 0 {
		d.DeltaHat = s.deltaHat
	}
	if s.phiMax > 0 {
		d.PhiMax = s.phiMax
	}
	if s.hopBound > 0 {
		d.HopBound = s.hopBound
	}

	cfg := core.DefaultConfig(p)
	cfg.DeltaHat = min(d.DeltaHat, n)
	cfg.PhiMax = d.PhiMax
	cfg.HopBound = d.HopBound
	cfg.Exec = core.ExecMode(s.exec)

	// The fault spec can only be validated once the deployment's true n and
	// channel count are fixed (crash sets name node IDs, jamming must leave
	// a usable channel).
	if s.faulted {
		if err := s.faults.Validate(n, p.Channels); err != nil {
			return nil, fmt.Errorf("mcnet: %w", err)
		}
	}

	return &Network{
		params:      p,
		topo:        s.topo,
		seed:        s.seed,
		pos:         toGeo(pts),
		cfg:         cfg,
		plan:        core.NewPlan(p, cfg),
		maxSlots:    s.maxSlots,
		parallelism: s.parallelism,
		exact:       s.exact,
		farFieldTol: s.farFieldTol,
		cellFrac:    s.cellFrac,
		kernel32:    s.kernel32,
		faults:      s.faults,
		faulted:     s.faulted,
		colorer:     s.colorer,
	}, nil
}

// N returns the node count.
func (nw *Network) N() int { return len(nw.pos) }

// Channels returns the channel count F.
func (nw *Network) Channels() int { return nw.params.Channels }

// Seed returns the run seed.
func (nw *Network) Seed() uint64 { return nw.seed }

// TopologyName returns the topology's name.
func (nw *Network) TopologyName() string { return nw.topo.Name() }

// Positions returns the node coordinates.
func (nw *Network) Positions() []Point { return fromGeo(nw.pos) }

// Geometry returns the radii derived from the SINR parameters.
func (nw *Network) Geometry() Geometry { return geometryOf(nw.params) }

// geometryOf is the single params → Geometry mapping, shared by New (for
// topology layout/sizing) and Network.Geometry.
func geometryOf(p model.Params) Geometry {
	return Geometry{
		TransmissionRange: p.RT(),
		CommRadius:        p.REps(),
		ClusterRadius:     p.ClusterRadius(),
	}
}

// Stats measures the communication graph induced by the layout at R_ε.
func (nw *Network) Stats() GraphStats {
	g := graph.Build(nw.pos, nw.params.REps())
	return GraphStats{
		MaxDegree: g.MaxDegree(),
		AvgDegree: g.AvgDegree(),
		Connected: g.Connected(),
		Diameter:  g.DiameterApprox(),
	}
}

// Plan exposes the derived pipeline sizing and stage budgets.
func (nw *Network) Plan() PlanInfo {
	return PlanInfo{
		DeltaHat:    nw.cfg.DeltaHat,
		PhiMax:      nw.cfg.PhiMax,
		HopBound:    nw.cfg.HopBound,
		BuildSlots:  nw.plan.Offsets.Followers,
		BudgetSlots: nw.plan.Offsets.End,
		Stages:      stageWindows(nw.plan),
	}
}

// Events registers an observer that receives every milestone Event as runs
// emit them. Calls are serialized but arrive on simulator goroutines; the
// observer must be fast and must not call back into the Network.
func (nw *Network) Events(fn func(Event)) {
	if fn == nil {
		return
	}
	nw.mu.Lock()
	nw.observers = append(nw.observers, fn)
	nw.mu.Unlock()
}

// newField builds a per-run resolver with the network's performance options
// applied: hierarchical resolution at the default tolerance unless the
// Exact, FarFieldTolerance or ResolverCellSize options said otherwise.
func (nw *Network) newField(p model.Params) *phy.Field {
	f := phy.NewField(p, nw.pos)
	f.SetParallelism(nw.parallelism)
	if nw.cellFrac > 0 {
		f.SetCellSize(nw.cellFrac)
	}
	switch {
	case nw.exact:
		f.SetResolver(phy.ResolverExact)
	case nw.farFieldTol >= 0:
		f.SetFarFieldTolerance(nw.farFieldTol) // 0 keeps the historical exact meaning
	}
	if nw.kernel32 {
		f.SetKernel(phy.KernelFloat32)
	}
	return f
}

// newEngine builds a per-run engine with event streaming and (when fault
// options were given) a fresh fault injector attached; callers install
// their own Trace for slot and channel accounting. The injector is returned
// so runs can surface its Report — nil when the network is fault-free.
func (nw *Network) newEngine() (*sim.Engine, *fault.Injector) {
	e := sim.NewEngine(nw.newField(nw.params), nw.seed)
	if nw.maxSlots > 0 {
		e.MaxSlots = nw.maxSlots
	}
	var inj *fault.Injector
	if nw.faulted {
		inj = fault.NewInjector(nw.faults, nw.seed, nw.N(), nw.params.Channels, nw.plan.Offsets.End)
		e.Faults = inj
	}
	nw.mu.Lock()
	observers := make([]func(Event), len(nw.observers))
	copy(observers, nw.observers)
	nw.mu.Unlock()
	if len(observers) > 0 {
		e.EventSink = func(ev sim.Event) {
			pub := Event{Slot: ev.Slot, Node: ev.Node, Name: ev.Name, Value: ev.Value}
			nw.dispatchMu.Lock()
			defer nw.dispatchMu.Unlock()
			for _, fn := range observers {
				fn(pub)
			}
		}
	}
	return e, inj
}

// Aggregate runs the full multichannel pipeline: structure construction
// followed by data aggregation of values (one per node) under op. The run
// aborts promptly with ctx.Err() if ctx is cancelled.
func (nw *Network) Aggregate(ctx context.Context, values []int64, op Aggregator) (*AggregateResult, error) {
	n := nw.N()
	if len(values) != n {
		return nil, fmt.Errorf("mcnet: %d values for %d nodes", len(values), n)
	}
	if op == nil {
		return nil, fmt.Errorf("mcnet: nil aggregator")
	}

	busySlots := make([]int, nw.params.Channels)
	seen := make([]bool, nw.params.Channels)
	slots := 0
	e, inj := nw.newEngine()
	e.Trace = func(_ int, txs []phy.Tx, _ []phy.Rx, _ []phy.Reception) {
		slots++
		for i := range seen {
			seen[i] = false
		}
		for _, tx := range txs {
			if tx.Channel >= 0 && tx.Channel < len(seen) && !seen[tx.Channel] {
				seen[tx.Channel] = true
				busySlots[tx.Channel]++
			}
		}
	}

	aop := toOp(op)
	res, err := core.RunContext(ctx, e, nw.plan, values, aop, nw.seed)
	if err != nil {
		return nil, err
	}

	out := &AggregateResult{
		Value:       aop.Fold(values),
		Nodes:       make([]NodeResult, n),
		Slots:       slots,
		BudgetSlots: nw.plan.Offsets.End,
		BuildSlots:  nw.plan.Offsets.Followers,
	}
	for i, r := range res {
		out.Nodes[i] = NodeResult{
			Value:        r.Value,
			Informed:     r.Ok,
			IsDominator:  r.IsDominator,
			IsReporter:   r.IsReporter,
			Dominator:    r.Dominator,
			ClusterColor: r.Color,
			SizeEstimate: r.SizeEst,
			Channel:      r.Channel,
		}
		switch {
		case r.IsDominator:
			out.Dominators++
		case r.IsReporter:
			out.Reporters++
		default:
			out.Followers++
		}
		if r.Ok {
			out.Informed++
			if r.Value == out.Value {
				out.Exact++
			}
		}
	}

	events := e.Events()
	aggStart := nw.plan.Offsets.Followers
	lastAck, lastDone := 0, 0
	for _, ev := range events {
		switch ev.Name {
		case EventAcked:
			if ev.Slot > lastAck {
				lastAck = ev.Slot
			}
		case EventBackboneAgg, EventBackboneResult:
			if ev.Slot > lastDone {
				lastDone = ev.Slot
			}
		}
	}
	if lastAck > 0 {
		out.AckSlots = lastAck - aggStart
	}
	if lastDone > 0 {
		out.AggSlots = lastDone - aggStart
	}
	out.Stages = observeStages(stageWindows(nw.plan), events)
	out.ChannelUtilization = make([]float64, len(busySlots))
	if slots > 0 {
		for i, b := range busySlots {
			out.ChannelUtilization[i] = float64(b) / float64(slots)
		}
	}
	if inj != nil {
		out.Faults = faultReportOf(inj.Report(), out)
	}
	return out, nil
}

// faultReportOf converts an injector's run summary into the public report,
// restricting the informed/exact counts to the nodes that survived.
func faultReportOf(rep fault.Report, out *AggregateResult) *FaultReport {
	tally := rep.TallySurvivors(len(out.Nodes), func(i int) (bool, int64) {
		return out.Nodes[i].Informed, out.Nodes[i].Value
	}, out.Value)
	return &FaultReport{
		Delivered:          rep.Delivered,
		Lost:               rep.Lost,
		JammedSlotChannels: rep.JammedSlotChannels,
		CrashedNodes:       rep.CrashedNodes,
		ByzantineNodes:     rep.ByzantineNodes,
		Corrupted:          rep.Corrupted,
		Dropped:            rep.Dropped,
		Survivors:          tally.Survivors,
		SurvivorsInformed:  tally.Informed,
		SurvivorsExact:     tally.Exact,
		SurvivorsAgreeing:  tally.Agreeing,
	}
}

// Color runs the configured coloring backend (the Colorer option; default
// the paper's Sec. 7 procedures): every node receives a color such that no
// two communication-graph neighbors share one. The run aborts promptly with
// ctx.Err() if ctx is cancelled.
func (nw *Network) Color(ctx context.Context) (*ColorResult, error) {
	backend, err := coloring.ByName(nw.colorer)
	if err != nil {
		return nil, fmt.Errorf("mcnet: %w", err)
	}
	n := nw.N()
	slots := 0
	e, _ := nw.newEngine()
	e.Trace = func(int, []phy.Tx, []phy.Rx, []phy.Reception) { slots++ }

	res, st, err := backend.Color(ctx, e, nw.plan)
	if err != nil {
		return nil, err
	}
	out := &ColorResult{
		Backend: backend.Name(),
		Nodes:   make([]NodeColor, n),
		Slots:   slots,
		Rounds:  st.Rounds,
		Cycle:   st.Cycle,
	}
	for i, r := range res {
		out.Nodes[i] = NodeColor{
			Color:        r.Color,
			Index:        r.Index,
			ClusterColor: r.ClusterColor,
			IsDominator:  r.IsDominator,
			IsReporter:   r.IsReporter,
		}
	}
	out.Conflicts, out.Uncolored, out.Palette = coloring.Validate(nw.pos, nw.params.REps(), res)
	out.ColorSlots = st.ColorSlots
	return out, nil
}

// VerifyTDMA uses a coloring as a TDMA broadcast schedule — in cycle slot
// t, nodes with color t transmit on one channel — and resolves every slot
// over the SINR layer, reporting how many directed communication-graph
// links decoded their neighbor's broadcast. A proper coloring delivers
// every link in one cycle.
//
// Nodes with a negative color are unscheduled: the cycle never reaches
// them, so they only listen and their outgoing links cannot deliver. The
// report counts them in Unscheduled while Links still includes their
// edges, so Delivered < Links whenever a partially uncolored palette is
// verified — the gap is the schedule's fault, not the SINR layer's.
func (nw *Network) VerifyTDMA(colors []int) (TDMAReport, error) {
	n := nw.N()
	if len(colors) != n {
		return TDMAReport{}, fmt.Errorf("mcnet: %d colors for %d nodes", len(colors), n)
	}
	// maxColor starts below every valid color so an all-unscheduled
	// palette reports a zero-length cycle instead of a phantom one-slot
	// schedule.
	maxColor := -1
	unscheduled := 0
	for _, c := range colors {
		if c > maxColor {
			maxColor = c
		}
		if c < 0 {
			unscheduled++
		}
	}
	g := graph.Build(nw.pos, nw.params.REps())
	field := nw.newField(nw.params.WithChannels(1))
	rep := TDMAReport{Cycle: maxColor + 1, Unscheduled: unscheduled}
	// Only slots that schedule at least one transmitter can deliver, so
	// resolve the distinct colors rather than every slot of the cycle —
	// identical report, and a sparse palette (or one stray huge color)
	// costs per color in use instead of per cycle slot.
	inUse := make(map[int]struct{}, n)
	var slots []int
	for _, c := range colors {
		if c < 0 {
			continue
		}
		if _, ok := inUse[c]; !ok {
			inUse[c] = struct{}{}
			slots = append(slots, c)
		}
	}
	sort.Ints(slots)
	for _, slot := range slots {
		var txs []phy.Tx
		var rxs []phy.Rx
		for i, c := range colors {
			if c == slot {
				txs = append(txs, phy.Tx{Node: i, Channel: 0, Msg: i})
			} else {
				rxs = append(rxs, phy.Rx{Node: i, Channel: 0})
			}
		}
		recs := field.Resolve(txs, rxs)
		for k, rec := range recs {
			if !rec.Decoded {
				continue
			}
			for _, nb := range g.Neighbors(rxs[k].Node) {
				if int(nb) == rec.From {
					rep.Delivered++
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		rep.Links += g.Degree(i)
	}
	return rep, nil
}

// stageWindows lists the budgeted slot window of every pipeline stage.
func stageWindows(pl *core.Plan) []StageReport {
	o := pl.Offsets
	mk := func(name string, start, end int) StageReport {
		return StageReport{Name: name, Start: start, End: end, LastEvent: -1}
	}
	return []StageReport{
		mk("dominate", o.Dominate, o.Color),
		mk("color", o.Color, o.Announce),
		mk("announce", o.Announce, o.CSA),
		mk("csa", o.CSA, o.Elect),
		mk("elect", o.Elect, o.Followers),
		mk("followers", o.Followers, o.Tree),
		mk("tree", o.Tree, o.Backbone),
		mk("backbone", o.Backbone, o.Inform),
		mk("inform", o.Inform, o.End),
	}
}

// observeStages fills each stage window with the milestone events that
// fired inside it. Events whose slot lands at or beyond the final stage's
// budget end — programs that consumed their whole schedule, or instrumented
// epilogues past the budget — are clamped into the final stage, so the
// per-stage event totals always sum to the engine's event log.
func observeStages(stages []StageReport, events []sim.Event) []StageReport {
	for _, ev := range events {
		for i := range stages {
			last := i == len(stages)-1
			if ev.Slot >= stages[i].Start && (ev.Slot < stages[i].End || last) {
				stages[i].Events++
				if ev.Slot > stages[i].LastEvent {
					stages[i].LastEvent = ev.Slot
				}
				break
			}
		}
	}
	return stages
}
