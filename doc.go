// Package mcnet is a from-scratch Go reproduction of "Leveraging Multiple
// Channels in Ad Hoc Networks" (Halldórsson, Wang, Yu; PODC 2015): data
// aggregation in O(D + Δ/F + log n log log n) rounds and node coloring with
// O(Δ) colors on F channels under the SINR interference model.
//
// The root package is the public facade — the one importable surface. Build
// a Network with New and functional options, then run the paper's protocols
// with high-level verbs:
//
//	net, err := mcnet.New(48,
//		mcnet.Channels(4),
//		mcnet.Seed(42),
//		mcnet.WithTopology(mcnet.Crowd),
//	)
//	if err != nil {
//		log.Fatal(err)
//	}
//	res, err := net.Aggregate(ctx, values, mcnet.Sum)
//
// The facade derives all pipeline sizing (the cluster-size bound Δ̂, the
// TDMA period φ, the backbone hop bound) from the chosen Topology, so
// callers never hand-tune internal schedule parameters; explicit options
// (DeltaHat, PhiMax, HopBound) override the derivation when needed.
// Aggregate and Color honor context cancellation, results carry per-stage
// budgets vs. observed completion events plus channel utilization, and
// Events streams per-node milestones live. RunExperiment exposes the
// evaluation suite (E1–E10, ablations A1–A3) that regenerates the paper's
// claimed bounds.
//
// Everything under internal/ is implementation — the SINR physical layer,
// the slot-synchronous simulator, and the per-stage protocols — and is not
// importable from outside; examples/, cmd/ and the benchmarks consume only
// the facade. See README.md for the architecture and migration notes and
// EXPERIMENTS.md for measured results.
package mcnet
