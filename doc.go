// Package mcnet is a from-scratch Go reproduction of "Leveraging Multiple
// Channels in Ad Hoc Networks" (Halldórsson, Wang, Yu; PODC 2015): data
// aggregation in O(D + Δ/F + log n log log n) rounds and node coloring with
// O(Δ) colors on F channels under the SINR interference model.
//
// The root package holds the benchmark suite regenerating the evaluation
// (one benchmark per experiment of DESIGN.md §5); the implementation lives
// under internal/ — see README.md for the architecture and EXPERIMENTS.md
// for measured results.
package mcnet
