// Package mcnet is a from-scratch Go reproduction of "Leveraging Multiple
// Channels in Ad Hoc Networks" (Halldórsson, Wang, Yu; PODC 2015): data
// aggregation in O(D + Δ/F + log n log log n) rounds and node coloring with
// O(Δ) colors on F channels under the SINR interference model.
//
// The root package is the public facade — the one importable surface. Build
// a Network with New and functional options, then run the paper's protocols
// with high-level verbs:
//
//	net, err := mcnet.New(48,
//		mcnet.Channels(4),
//		mcnet.Seed(42),
//		mcnet.WithTopology(mcnet.Crowd),
//	)
//	if err != nil {
//		log.Fatal(err)
//	}
//	res, err := net.Aggregate(ctx, values, mcnet.Sum)
//
// The facade derives all pipeline sizing (the cluster-size bound Δ̂, the
// TDMA period φ, the backbone hop bound) from the chosen Topology, so
// callers never hand-tune internal schedule parameters; explicit options
// (DeltaHat, PhiMax, HopBound) override the derivation when needed.
// Aggregate and Color honor context cancellation, results carry per-stage
// budgets vs. observed completion events plus channel utilization, and
// Events streams per-node milestones live. RunExperiment exposes the
// evaluation suite (E1–E10, ablations A1–A3, fault sweeps F1–F6, coloring
// head-to-heads C1–C3) that regenerates the paper's claimed bounds.
//
// # Coloring backends
//
// Color is pluggable: the Colorer option selects among three distributed
// coloring protocols behind one interface (ColorerNames lists them), all
// running on the same simulation engine, so every backend inherits
// determinism, cancellation, event streaming and the fault layer. "sec7"
// (the default) is the paper's Sec. 7 cluster-based algorithm, whose
// transcript is pinned bit-for-bit by a golden test; "dplus1" is a
// degree+1 list coloring that guarantees each node's color is at most its
// degree (palette ≤ Δ+1); "hsb" is a hypergraph-symmetry-breaking
// multi-channel assignment whose colors are (slot, channel) pairs — F
// colors share each TDMA slot on distinct channels, shrinking the cycle
// to ⌈palette/F⌉. ColorResult.Backend, Palette, Cycle and Rounds make
// the backends comparable; ScenarioSpec's "colorer" field pins one on the
// wire, and experiments c1–c3 print the head-to-heads.
//
// # Fault injection
//
// Four fault options stress-test the schedules on non-ideal networks and
// compose freely: Loss(p) suppresses each decoded message independently
// with probability p; Jamming(k, model) lets an adversary jam k channels
// per slot — oblivious, round-robin, reactive (last slot's busiest
// channels) or adaptive (an ε-greedy bandit over decode history);
// Byzantine(frac, strategy) makes a seeded node subset lie (ByzCorrupt: a
// fixed per-node lie, ByzEquivocate: a fresh lie per slot and channel,
// ByzSilent: transmit nothing); Churn(spec) crashes nodes at explicit or
// seeded random slots. Every fault decision is a pure function of the run
// seed, so faulty runs replay bit-identically across both execution modes
// and all worker counts, and zero-intensity faults reproduce the
// fault-free transcript bit-for-bit. Results gain a FaultReport
// (delivered vs. lost, jammed slot-channels, crashed and Byzantine nodes,
// honest-survivor correctness — SurvivorsExact and SurvivorsAgreeing
// exclude the liars themselves). RunScenario sweeps fault grids and
// renders the standard tables; cmd/mcscenario is its CLI; experiments f4
// (Byzantine degradation), f5 (jam-adversary head-to-head) and f6
// (Byzantine × churn) quantify how far the paper's guarantees bend.
//
// # Batch execution
//
// Sweeps — fault grids, experiment axes, seeded repetitions — are sets of
// independent runs, and RunBatch executes them across a worker pool: one
// RunSpec per run (seed plus fault intensities layered onto shared base
// options), results returned in spec order. The determinism guarantee is
// strict: every worker count produces exactly the results a serial loop
// over New + Aggregate would have, in the same order, so tables built from
// a batch are byte-identical at any parallelism — the pool trades
// wall-clock time only. Precomputation is shared: specs with equal seeds
// reuse one deployment construction (topology layout, derived sizing,
// pipeline plan) with only the per-spec fault layer swapped in, so a fault
// grid over s seeds costs s deployment builds rather than one per run.
// RunScenario, the experiment suite (ExperimentOptions.Parallel) and both
// CLIs (-parallel) run on this layer; Scenario.Progress and
// BatchOptions.Progress report completed runs for long sweeps. The first
// run error aborts a batch, and a cancelled context returns ctx.Err()
// promptly without leaking goroutines.
//
// # Scenario service
//
// Sweeps travel as JSON spec documents: ScenarioSpec is the stable wire
// format (strict parsing via ParseScenarioSpec — unknown fields rejected,
// validation errors name the offending field), RunSpec marshals per-run
// fault layers, and Scenario.Compile exposes the sweep's executable form
// (Len/Specs/Run/Fold) so external schedulers can run items one at a time
// and fold them later. Items are pure functions of (spec, index), which
// makes sweeps resumable from any durable prefix. cmd/mcserved is the
// long-running daemon built on this (internal/serve): an HTTP/JSON
// service with a persistent on-disk job queue, per-job NDJSON result
// logs written in strict index order, SSE progress streaming, admission
// control and graceful drain — a killed daemon resumes interrupted jobs
// from the last durable item, and the finished table is byte-identical
// to an uninterrupted in-process RunScenario. cmd/mcscenario runs the
// same documents locally (-spec) or submits them to a daemon (-submit).
// All CLIs cancel cleanly on SIGINT/SIGTERM via signal.NotifyContext.
//
// # Performance options
//
// Slot resolution is the hot path. By default it runs the hierarchical
// cell-aggregated resolver: each slot's transmitters are binned once into
// a spatial grid and laid out in struct-of-arrays form, every listener
// scans nearby cells exactly, and each distant cell contributes one
// centroid-aggregated term, with relative error at most ε (default 0.05)
// on the far-field interference term. Decoding candidates are always
// evaluated exactly — the near field covers the transmission range — so
// decode outcomes can differ from exact resolution only when a SINR sits
// within the far-field error of the threshold β, and runs remain
// deterministic for a fixed configuration at every worker count. When a
// deployment is compact enough that nothing can be aggregated under the
// tolerance (the Crowd topology, for instance), the resolver degenerates
// to the exact kernel and transcripts are bit-identical to Exact mode.
//
// The knobs: Exact() forces bit-exact pairwise resolution, whose
// transcripts replay identically across releases; FarFieldTolerance(ε)
// tunes the hierarchical error bound (0 also means exact — this knob's
// historical contract); ResolverCellSize(frac) sizes grid cells as a
// fraction of the transmission range; Parallelism sets the worker count
// the resolver fans listeners out across (default GOMAXPROCS) — every
// setting is bit-identical, it trades wall-clock time only. The slot
// pipeline is allocation-free in steady state: the engine presizes a
// per-run arena (action, reception and grid-bin scratch) and listeners
// fan out over a persistent worker pool, so no per-slot allocations or
// goroutine spawns occur.
//
// The engine itself has two execution modes, selected by the Exec option
// and bit-identical by construction. The goroutine mode — the reference
// form — runs one goroutine per node with a sharded slot barrier. The
// stepped mode runs the same pipeline goroutine-free: node programs are
// compiled to resumable steppers the engine drives inline each slot, with
// long idle stretches parked on a calendar wake-wheel instead of a
// blocked goroutine, so a million-node crowd needs four goroutines
// instead of a million stacks. ExecAuto (the default) picks the stepped
// engine at crowd scale (n ≥ 16384) and the goroutine reference path
// below it; either can be forced with Exec(ExecStepped) or
// Exec(ExecGoroutines), and ScenarioSpec's "exec" field plus both CLIs'
// -exec flag pin the mode on the wire. Identity across modes is pinned by
// golden-transcript tests and a facade-level equivalence test under
// -race -cpu 1,2,8 in CI.
//
// Two further mechanisms push the hot path at crowd scale. The slot
// barrier shards at ≥1024 nodes: instead of every node's arrival bouncing
// one shared atomic word, nodes are grouped by geo-grid region into ≤64
// balanced shards with padded per-shard epoch counters and a two-level
// combine — transcripts are bit-identical to the single-word barrier by
// construction, pinned by a golden-transcript test and a -race -cpu
// 1,2,8 CI stress leg. And Float32Kernel() (default off) swaps the SINR
// inner loop for a divide-free float32 inverse-sqrt kernel: relative
// error at most phy.Float32KernelTolerance (1e-4) on every accumulated
// power, decode flips confined to the ε-ambiguous band around β,
// bit-identical runs per (seed, kernel) at every Parallelism setting —
// but not transcript-compatible with the default f64 kernel, which stays
// frozen by the golden-transcript contracts. See README.md for the
// error-bound derivations and measured numbers — on scalar single-core
// hardware the f32 kernel trades slightly slower for divide-free, so
// measure before enabling it. See cmd/mcagg or
// cmd/mcscenario's -cpuprofile / -memprofile flags for profiling runs
// without editing code.
//
// Everything under internal/ is implementation — the SINR physical layer,
// the slot-synchronous simulator, and the per-stage protocols — and is not
// importable from outside; examples/, cmd/ and the benchmarks consume only
// the facade. See README.md for the architecture and migration notes and
// EXPERIMENTS.md for measured results.
package mcnet
