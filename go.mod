module mcnet

go 1.22
