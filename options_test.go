package mcnet

import (
	"math"
	"testing"
)

func testGeometry(t *testing.T) Geometry {
	t.Helper()
	nw, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	return nw.Geometry()
}

// TestTopologyDefaults pins the per-topology sizing derivations the facade
// replaces hand-tuned example constants with.
func TestTopologyDefaults(t *testing.T) {
	g := testGeometry(t)

	if d := Crowd.Defaults(48, g); d != (Defaults{DeltaHat: 48, PhiMax: 4, HopBound: 2}) {
		t.Errorf("Crowd defaults = %+v", d)
	}
	if d := Corridor(6).Defaults(48, g); d != (Defaults{DeltaHat: 24, PhiMax: 24, HopBound: 24}) {
		t.Errorf("Corridor(6) defaults = %+v", d)
	}
	if d := Uniform(12).Defaults(128, g); d.DeltaHat != 48 || d.HopBound < 6 {
		t.Errorf("Uniform(12) defaults = %+v, want DeltaHat 48 and a diameter-scaled HopBound", d)
	}
	// DeltaHat may never exceed n.
	if d := Uniform(12).Defaults(16, g); d.DeltaHat > 16 {
		t.Errorf("Uniform defaults DeltaHat = %d > n = 16", d.DeltaHat)
	}
	// Line and Ring scale HopBound with length.
	short := Line(0.5).Defaults(16, g)
	long := Line(0.5).Defaults(256, g)
	if long.HopBound <= short.HopBound {
		t.Errorf("Line HopBound did not grow with n: %d vs %d", short.HopBound, long.HopBound)
	}

	// Custom positions measure the induced graph: a 4-node line with steps
	// of 0.6·R_ε links only adjacent nodes — max degree 2, diameter 3.
	step := 0.6 * g.CommRadius
	pts := []Point{{0, 0}, {step, 0}, {2 * step, 0}, {3 * step, 0}}
	d := Positions(pts).Defaults(len(pts), g)
	if d.DeltaHat != 3 {
		t.Errorf("Positions DeltaHat = %d, want 3 (max degree 2 + 1)", d.DeltaHat)
	}
	if d.HopBound < 3 {
		t.Errorf("Positions HopBound = %d, want ≥ diameter 3", d.HopBound)
	}
}

// TestNewDerivesDefaults: the plan reflects topology-derived sizing, and
// explicit options override it.
func TestNewDerivesDefaults(t *testing.T) {
	nw, err := New(48, WithTopology(Crowd))
	if err != nil {
		t.Fatal(err)
	}
	pi := nw.Plan()
	if pi.DeltaHat != 48 || pi.PhiMax != 4 || pi.HopBound != 2 {
		t.Errorf("Crowd plan = %+v, want DeltaHat 48, PhiMax 4, HopBound 2", pi)
	}

	nw, err = New(48, WithTopology(Crowd), DeltaHat(10), PhiMax(7), HopBound(5))
	if err != nil {
		t.Fatal(err)
	}
	pi = nw.Plan()
	if pi.DeltaHat != 10 || pi.PhiMax != 7 || pi.HopBound != 5 {
		t.Errorf("overridden plan = %+v, want DeltaHat 10, PhiMax 7, HopBound 5", pi)
	}
	if pi.BuildSlots <= 0 || pi.BudgetSlots <= pi.BuildSlots {
		t.Errorf("plan budgets = %+v, want 0 < build < total", pi)
	}
}

// TestLayoutDeterminism: equal options yield identical layouts; different
// seeds yield different ones.
func TestLayoutDeterminism(t *testing.T) {
	a, err := New(32, Seed(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(32, Seed(4))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(32, Seed(5))
	if err != nil {
		t.Fatal(err)
	}
	pa, pb, pc := a.Positions(), b.Positions(), c.Positions()
	same, diff := true, false
	for i := range pa {
		if pa[i] != pb[i] {
			same = false
		}
		if pa[i] != pc[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different layouts")
	}
	if !diff {
		t.Error("different seeds produced identical layouts")
	}
}

// TestTopologyLayouts: every built-in produces a usable layout; shaped
// topologies may adjust n.
func TestTopologyLayouts(t *testing.T) {
	g := testGeometry(t)
	cases := []struct {
		topo Topology
		n    int
		want int
	}{
		{Crowd, 32, 32},
		{Uniform(12), 32, 32},
		{Grid, 32, 32},
		{Line(0.5), 32, 32},
		{Chain, 16, 16},
		{Corridor(4), 32, 32},
		{Ring(0.5), 32, 32},
		{Hotspot(3, 8, 4, 0.05), 32, 24},
	}
	for _, tc := range cases {
		pts := tc.topo.Layout(tc.n, 1, g)
		if len(pts) != tc.want {
			t.Errorf("%s: %d points, want %d", tc.topo.Name(), len(pts), tc.want)
		}
		for _, p := range pts {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				t.Errorf("%s: non-finite point %+v", tc.topo.Name(), p)
				break
			}
		}
		d := tc.topo.Defaults(tc.want, g)
		if tc.topo.Name() != "positions" {
			if d.DeltaHat < 1 || d.PhiMax < 1 || d.HopBound < 1 {
				t.Errorf("%s: degenerate defaults %+v", tc.topo.Name(), d)
			}
		}
	}
}

// TestHotspotAdjustsN: New adopts the topology's intrinsic node count.
func TestHotspotAdjustsN(t *testing.T) {
	nw, err := New(100, WithTopology(Hotspot(2, 8, 4, 0.05)))
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 16 {
		t.Errorf("N = %d, want 16 (2 clusters × 8)", nw.N())
	}
}

// TestStats: the crowd layout induces a connected clique-like graph.
func TestStats(t *testing.T) {
	nw, err := New(24, WithTopology(Crowd), Seed(6))
	if err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if !st.Connected {
		t.Error("crowd graph disconnected")
	}
	if st.MaxDegree != 23 {
		t.Errorf("MaxDegree = %d, want 23 (crowd is a clique)", st.MaxDegree)
	}
	if st.Diameter != 1 {
		t.Errorf("Diameter = %d, want 1", st.Diameter)
	}
}
