package mcnet

import (
	"context"
	"reflect"
	"testing"

	"mcnet/internal/sim"
)

// TestVerifyTDMAUnscheduled: a partially uncolored palette must be reported
// — unscheduled nodes never transmit, so Delivered undercounts against a
// Links total that still includes their edges, and the report says why.
func TestVerifyTDMAUnscheduled(t *testing.T) {
	const n = 24
	nw, err := New(n, Channels(2), Seed(5), WithTopology(Grid))
	if err != nil {
		t.Fatal(err)
	}
	cr, err := nw.Color(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	full := cr.Colors()
	fullRep, err := nw.VerifyTDMA(full)
	if err != nil {
		t.Fatal(err)
	}
	if fullRep.Unscheduled != cr.Uncolored {
		t.Errorf("Unscheduled = %d, want %d (the coloring's uncolored count)", fullRep.Unscheduled, cr.Uncolored)
	}

	// Uncolor two nodes by hand.
	partial := append([]int(nil), full...)
	partial[0], partial[1] = -1, -5
	rep, err := nw.VerifyTDMA(partial)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unscheduled != cr.Uncolored+2 {
		t.Errorf("Unscheduled = %d, want %d", rep.Unscheduled, cr.Uncolored+2)
	}
	if rep.Links != fullRep.Links {
		t.Errorf("Links changed: %d vs %d — totals must keep counting unscheduled nodes' edges", rep.Links, fullRep.Links)
	}
	// Note: no assertion on Delivered vs the full palette — unscheduling a
	// node can legitimately raise or lower deliveries (it removes both its
	// own broadcasts and its interference). Cycle is also unasserted: it
	// shrinks if an uncolored node uniquely held the max color.
	if rep.Delivered <= 0 {
		t.Errorf("partial palette delivered nothing")
	}

	// An all-unscheduled palette is a zero-length cycle, not a phantom
	// one-slot schedule.
	none := make([]int, n)
	for i := range none {
		none[i] = -1
	}
	empty, err := nw.VerifyTDMA(none)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Cycle != 0 || empty.Delivered != 0 || empty.Unscheduled != n {
		t.Errorf("all-negative palette: %+v, want Cycle=0 Delivered=0 Unscheduled=%d", empty, n)
	}
	if empty.Links != fullRep.Links {
		t.Errorf("Links changed for all-negative palette: %d vs %d", empty.Links, fullRep.Links)
	}

	// A stray huge color must cost per color in use, not per cycle slot:
	// this would loop for hours if VerifyTDMA resolved every slot.
	huge := append([]int(nil), full...)
	huge[2] = 1 << 30
	hugeRep, err := nw.VerifyTDMA(huge)
	if err != nil {
		t.Fatal(err)
	}
	if hugeRep.Cycle != 1<<30+1 {
		t.Errorf("Cycle = %d, want %d", hugeRep.Cycle, 1<<30+1)
	}
	// A dedicated slot can only help the moved node (it broadcasts without
	// contention), so deliveries must stay positive and at least match the
	// full palette's.
	if hugeRep.Delivered < fullRep.Delivered {
		t.Errorf("huge-color Delivered = %d < full palette's %d", hugeRep.Delivered, fullRep.Delivered)
	}
}

// TestObserveStagesClampsTrailing: events landing strictly past the final
// stage's budget end must be clamped into the final stage so per-stage
// totals agree with the engine's event log.
func TestObserveStagesClampsTrailing(t *testing.T) {
	stages := []StageReport{
		{Name: "a", Start: 0, End: 10, LastEvent: -1},
		{Name: "b", Start: 10, End: 20, LastEvent: -1},
	}
	events := []sim.Event{
		{Slot: 0, Name: "x"},   // stage a
		{Slot: 9, Name: "x"},   // stage a
		{Slot: 10, Name: "x"},  // stage b
		{Slot: 20, Name: "x"},  // at budget end: final stage
		{Slot: 137, Name: "x"}, // past budget end: clamped into final stage
	}
	got := observeStages(stages, events)
	if got[0].Events != 2 || got[0].LastEvent != 9 {
		t.Errorf("stage a: %+v", got[0])
	}
	if got[1].Events != 3 || got[1].LastEvent != 137 {
		t.Errorf("stage b: %+v", got[1])
	}
	total := got[0].Events + got[1].Events
	if total != len(events) {
		t.Errorf("stage totals %d disagree with event log %d", total, len(events))
	}
}

// TestAggregateTranscriptInvariants is the facade-level golden-transcript
// check: equal options produce deeply equal results run over run, and the
// performance knobs (worker fan-out) change nothing but wall-clock time.
func TestAggregateTranscriptInvariants(t *testing.T) {
	const n = 64
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(i * 3)
	}
	run := func(opts ...Option) *AggregateResult {
		t.Helper()
		nw, err := New(n, append([]Option{Channels(4), Seed(11)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Aggregate(context.Background(), values, Sum)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run()
	if again := run(); !reflect.DeepEqual(base, again) {
		t.Error("equal seeds produced different aggregate results")
	}
	if serial := run(Parallelism(1)); !reflect.DeepEqual(base, serial) {
		t.Error("Parallelism(1) changed the transcript")
	}
	if wide := run(Parallelism(8)); !reflect.DeepEqual(base, wide) {
		t.Error("Parallelism(8) changed the transcript")
	}
}

// TestPerformanceOptionValidation covers the performance options' argument
// checks.
func TestPerformanceOptionValidation(t *testing.T) {
	if _, err := New(8, Parallelism(-1)); err == nil {
		t.Error("Parallelism(-1) should fail")
	}
	if _, err := New(8, FarFieldTolerance(-0.5)); err == nil {
		t.Error("FarFieldTolerance(-0.5) should fail")
	}
	if _, err := New(8, ResolverCellSize(0)); err == nil {
		t.Error("ResolverCellSize(0) should fail")
	}
	if _, err := New(8, ResolverCellSize(-2)); err == nil {
		t.Error("ResolverCellSize(-2) should fail")
	}
	if _, err := New(8, Parallelism(4), FarFieldTolerance(0.25), ResolverCellSize(0.3)); err != nil {
		t.Errorf("valid performance options rejected: %v", err)
	}
	if _, err := New(8, Exact()); err != nil {
		t.Errorf("Exact() rejected: %v", err)
	}
}

// TestFloat32KernelOption: the Float32Kernel knob is deterministic per
// (seed, kernel) — deeply equal results run over run and across Parallelism
// settings — computes the correct aggregate, and is rejected when α ≠ 3.
func TestFloat32KernelOption(t *testing.T) {
	const n = 64
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(i * 7)
		want += values[i]
	}
	run := func(opts ...Option) *AggregateResult {
		t.Helper()
		nw, err := New(n, append([]Option{Channels(4), Seed(23), Float32Kernel()}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Aggregate(context.Background(), values, Sum)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run()
	if base.Value != want {
		t.Fatalf("f32 aggregate = %d, want %d", base.Value, want)
	}
	if again := run(); !reflect.DeepEqual(base, again) {
		t.Error("equal (seed, kernel) produced different results")
	}
	if serial := run(Parallelism(1)); !reflect.DeepEqual(base, serial) {
		t.Error("Parallelism(1) changed the f32 transcript")
	}
	if wide := run(Parallelism(8)); !reflect.DeepEqual(base, wide) {
		t.Error("Parallelism(8) changed the f32 transcript")
	}
	if exact := run(Exact()); !reflect.DeepEqual(base, exact) {
		// The crowd fits one grid cell, so hier degenerates to the exact scan
		// and the f32 kernel must agree with itself across resolver modes.
		t.Error("f32 kernel diverged between resolver modes on a crowd")
	}
	if _, err := New(n, Float32Kernel(), SINR(2.5, 1.5)); err == nil {
		t.Error("Float32Kernel with α = 2.5 should fail at New")
	}
}

// TestAggregateResolverModes: every resolver configuration runs the whole
// pipeline and computes the right aggregate on a dense crowd. The crowd
// fits inside one grid cell, so the hierarchical resolver degenerates to
// the exact kernel and all configurations are transcript-identical.
func TestAggregateResolverModes(t *testing.T) {
	const n = 48
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(i + 1)
		want += values[i]
	}
	run := func(opts ...Option) *AggregateResult {
		t.Helper()
		nw, err := New(n, append([]Option{Channels(4), Seed(42)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Aggregate(context.Background(), values, Sum)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	def := run()
	exact := run(Exact())
	legacyExact := run(FarFieldTolerance(0))
	approx := run(FarFieldTolerance(0.1))
	coarse := run(ResolverCellSize(1.5))
	for name, res := range map[string]*AggregateResult{
		"default": def, "exact": exact, "tol0": legacyExact, "tol0.1": approx, "coarse": coarse,
	} {
		if res.Value != want {
			t.Fatalf("%s: fold = %d, want %d", name, res.Value, want)
		}
	}
	if !reflect.DeepEqual(def, exact) {
		t.Error("hierarchical default diverged from exact mode on an all-near-field crowd")
	}
	if !reflect.DeepEqual(exact, legacyExact) {
		t.Error("FarFieldTolerance(0) is not the same as Exact()")
	}
	if !reflect.DeepEqual(def, approx) {
		t.Error("far-field tolerance diverged on an all-near-field workload")
	}
}
