package mcnet

import (
	"context"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// runExecIdentity builds the same network once per forced execution mode,
// runs Aggregate on identical inputs, and requires the results and the full
// event stream to match exactly. Everything a caller can observe — per-node
// results, stage reports, channel utilization, fault reports, milestone
// events — must be independent of the execution mode.
func runExecIdentity(t *testing.T, name string, n int, opts ...Option) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		values := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			values = append(values, int64(2*i+1))
		}
		run := func(mode ExecMode) (*AggregateResult, []Event) {
			nw, err := New(n, append([]Option{Exec(mode)}, opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			var (
				mu     sync.Mutex
				events []Event
			)
			nw.Events(func(ev Event) {
				mu.Lock()
				events = append(events, ev)
				mu.Unlock()
			})
			if len(values) != nw.N() {
				values = values[:nw.N()]
			}
			res, err := nw.Aggregate(context.Background(), values, Sum)
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(events, func(a, b int) bool {
				if events[a].Slot != events[b].Slot {
					return events[a].Slot < events[b].Slot
				}
				if events[a].Node != events[b].Node {
					return events[a].Node < events[b].Node
				}
				if events[a].Name != events[b].Name {
					return events[a].Name < events[b].Name
				}
				return events[a].Value < events[b].Value
			})
			return res, events
		}
		gRes, gEvents := run(ExecGoroutines)
		sRes, sEvents := run(ExecStepped)
		if !reflect.DeepEqual(gRes, sRes) {
			for i := range gRes.Nodes {
				if gRes.Nodes[i] != sRes.Nodes[i] {
					t.Fatalf("node %d differs:\n goroutines %+v\n stepped    %+v", i, gRes.Nodes[i], sRes.Nodes[i])
				}
			}
			t.Fatalf("results differ:\n goroutines %+v\n stepped    %+v", gRes, sRes)
		}
		if !reflect.DeepEqual(gEvents, sEvents) {
			t.Fatalf("event streams differ: %d goroutine vs %d stepped events", len(gEvents), len(sEvents))
		}
	})
}

// TestAggregateExecIdentity is the facade-level golden of the execution-mode
// guarantee: ExecGoroutines and ExecStepped produce identical AggregateResults
// and event streams on the same network, across topologies, seeds and fault
// layers. Run under -cpu 1,2,8 in CI so worker-count schedulings are covered
// too.
func TestAggregateExecIdentity(t *testing.T) {
	for _, seed := range []uint64{3, 8} {
		runExecIdentity(t, "crowd", 48, Seed(seed), Channels(4))
	}
	runExecIdentity(t, "uniform", 72, Seed(5), Channels(8), WithTopology(Uniform(12)))
	runExecIdentity(t, "faults", 56, Seed(9), Channels(4),
		Loss(0.02),
		Jamming(1, JamOblivious),
		Churn(ChurnSpec{CrashAt: map[int]int{7: 40}, Rate: 0.05, From: 100}))
	runExecIdentity(t, "byzantine", 56, Seed(13), Channels(4),
		Byzantine(0.2, ByzEquivocate),
		Jamming(1, JamReactive))
	// Crash one of the Byzantine nodes mid-run (slot 40 falls inside the
	// build phase, where nodes spend most slots asleep in IdleFor): the
	// crash hook, the corruption hook and the reactive jammer must compose
	// identically in both engines. The membership is discovered from a
	// scout run so the test stays honest if the seeded selection changes.
	scout, err := New(56, Seed(13), Channels(4), Byzantine(0.2, ByzCorrupt))
	if err != nil {
		t.Fatal(err)
	}
	res, err := scout.Aggregate(context.Background(), seqValues(56), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil || len(res.Faults.ByzantineNodes) == 0 {
		t.Fatal("scout run reported no Byzantine nodes")
	}
	byzNode := res.Faults.ByzantineNodes[0]
	runExecIdentity(t, "byzantine-crash", 56, Seed(13), Channels(4),
		Byzantine(0.2, ByzCorrupt),
		Jamming(1, JamAdaptive),
		Churn(ChurnSpec{CrashAt: map[int]int{byzNode: 40}}))
	if !testing.Short() {
		runExecIdentity(t, "grid", 100, Seed(11), Channels(8), WithTopology(Grid))
	}
}

// TestParseExecMode pins the CLI/spec name mapping both ways.
func TestParseExecMode(t *testing.T) {
	for name, want := range map[string]ExecMode{
		"":           ExecAuto,
		"auto":       ExecAuto,
		"goroutines": ExecGoroutines,
		"stepped":    ExecStepped,
	} {
		got, err := ParseExecMode(name)
		if err != nil || got != want {
			t.Errorf("ParseExecMode(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseExecMode("threads"); err == nil {
		t.Error("ParseExecMode accepted an unknown mode")
	}
	for _, m := range []ExecMode{ExecAuto, ExecGoroutines, ExecStepped} {
		back, err := ParseExecMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip of %v via %q failed: %v, %v", m, m.String(), back, err)
		}
	}
	if err := func() error { _, err := New(2, Exec(ExecMode(99))); return err }(); err == nil {
		t.Error("Exec accepted an out-of-range mode")
	}
}
